// Package trace generates the deterministic synthetic workloads that
// stand in for the paper's benchmark suite (SPEC CPU2006 subset + the
// graph-analytics suite of [29], §5.1.2). Real SPEC binaries and pin
// traces are unavailable here, so each benchmark is modeled as a
// parametric reference stream whose page-level properties — footprint,
// memory intensity, spatial locality (lines touched per page visit),
// temporal skew (Zipf page popularity), streaming fraction, and write
// ratio — are set to reproduce the qualitative behavior the paper
// reports for that benchmark (e.g. lbm streams whole pages with little
// reuse; omnetpp/milc have poor spatial locality; graph workloads have
// power-law page reuse). DESIGN.md §5 documents this substitution.
//
// A Workload is a set of per-core event streams. Events are memory
// references at cache-line granularity separated by a number of
// non-memory instructions; the simulator replays them through the SRAM
// hierarchy, so DRAM-level behavior emerges from the modeled caches
// rather than being baked into the trace.
//
// Workload construction rides the shared substrate caches: Zipf alias
// tables are cached process-wide by (support, exponent) in util, and
// kernel-workload graphs by their full seed-keyed config in graph, so
// repeated runs (sweeps, tests, benchmarks) regenerate neither. Only
// the cheap per-run state — RNG streams, cursors, kernel walkers — is
// built per Workload.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"banshee/internal/errs"
	"banshee/internal/graph"
	"banshee/internal/mem"
	"banshee/internal/util"
)

// Event is one memory reference in a core's stream.
type Event struct {
	Gap   int // non-memory instructions preceding this reference
	Addr  mem.Addr
	Write bool
}

// Profile parameterizes one benchmark's reference stream.
type Profile struct {
	Name string

	// FootprintMB is the resident data size. For Shared workloads this
	// is the total footprint; for multiprogrammed SPEC workloads it is
	// per instance.
	FootprintMB int

	// MemRatio is the fraction of instructions that reference memory
	// (beyond the registers/L0 the generator abstracts away). It sets
	// bytes-per-instruction intensity.
	MemRatio float64

	// StreamFrac of page visits walk the footprint sequentially; the
	// rest pick a page by Zipf popularity with exponent ZipfS.
	StreamFrac float64
	ZipfS      float64

	// SpatialLines is the mean number of consecutive lines touched per
	// page visit (1 = pointer-chasing, 64 = whole 4 KB page).
	SpatialLines int

	// RevisitFrac is the probability a non-streaming visit re-touches
	// the previously visited page (short-term temporal locality that
	// upper-level caches absorb).
	RevisitFrac float64

	// WriteFrac of references are stores.
	WriteFrac float64

	// Shared marks multithreaded workloads (graph suite): all cores
	// reference one address space. Unshared profiles give each core a
	// private region (multiprogrammed SPEC).
	Shared bool
}

// The benchmark roster of §5.1.2. Parameters are calibrated to the
// paper's qualitative descriptions (see package comment); footprints are
// stated for the paper-scale 1 GB DRAM cache and are scaled down
// together with the cache by the experiment configs.
var profiles = map[string]Profile{
	// Graph analytics (multithreaded, shared address space). The paper
	// singles these out as the key targets: very high traffic, power-law
	// vertex reuse, large footprints.
	"pagerank":  {Name: "pagerank", FootprintMB: 6144, MemRatio: 0.117, StreamFrac: 0.30, ZipfS: 1.00, SpatialLines: 4, RevisitFrac: 0.10, WriteFrac: 0.15, Shared: true},
	"tri_count": {Name: "tri_count", FootprintMB: 4096, MemRatio: 0.099, StreamFrac: 0.35, ZipfS: 0.90, SpatialLines: 6, RevisitFrac: 0.15, WriteFrac: 0.05, Shared: true},
	"graph500":  {Name: "graph500", FootprintMB: 6144, MemRatio: 0.108, StreamFrac: 0.20, ZipfS: 1.05, SpatialLines: 3, RevisitFrac: 0.10, WriteFrac: 0.20, Shared: true},
	"sgd":       {Name: "sgd", FootprintMB: 3072, MemRatio: 0.078, StreamFrac: 0.40, ZipfS: 0.85, SpatialLines: 8, RevisitFrac: 0.20, WriteFrac: 0.30, Shared: true},
	"lsh":       {Name: "lsh", FootprintMB: 2048, MemRatio: 0.045, StreamFrac: 0.50, ZipfS: 0.80, SpatialLines: 10, RevisitFrac: 0.25, WriteFrac: 0.10, Shared: true},

	// SPEC CPU2006 subset (per-instance footprints; 16 instances run in
	// the homogeneous experiments).
	//
	// lbm: near-perfect spatial locality, whole pages streamed with few
	// accesses per page before eviction — the pathology where
	// replace-on-every-miss schemes beat selective caching (Fig. 4).
	"lbm": {Name: "lbm", FootprintMB: 400, MemRatio: 0.114, StreamFrac: 0.96, ZipfS: 0.20, SpatialLines: 56, RevisitFrac: 0.02, WriteFrac: 0.45},
	// bwaves: large streaming solver with some reuse.
	"bwaves": {Name: "bwaves", FootprintMB: 380, MemRatio: 0.090, StreamFrac: 0.75, ZipfS: 0.55, SpatialLines: 24, RevisitFrac: 0.10, WriteFrac: 0.25},
	// mcf: pointer-chasing over a large graph, high intensity, skewed
	// reuse that rewards associativity.
	"mcf": {Name: "mcf", FootprintMB: 420, MemRatio: 0.108, StreamFrac: 0.10, ZipfS: 0.95, SpatialLines: 2, RevisitFrac: 0.15, WriteFrac: 0.10},
	// omnetpp: discrete-event simulator; poor spatial locality, page
	// fills are mostly wasted (hurts Unison/TDC).
	"omnetpp": {Name: "omnetpp", FootprintMB: 300, MemRatio: 0.066, StreamFrac: 0.05, ZipfS: 0.80, SpatialLines: 1, RevisitFrac: 0.20, WriteFrac: 0.25},
	// libquantum: repeated sequential sweeps over one large vector —
	// full spatial locality and regular reuse.
	"libquantum": {Name: "libquantum", FootprintMB: 340, MemRatio: 0.099, StreamFrac: 0.98, ZipfS: 0.10, SpatialLines: 48, RevisitFrac: 0.02, WriteFrac: 0.30},
	// gcc: modest footprint and intensity, mixed pattern.
	"gcc": {Name: "gcc", FootprintMB: 90, MemRatio: 0.036, StreamFrac: 0.40, ZipfS: 0.80, SpatialLines: 6, RevisitFrac: 0.30, WriteFrac: 0.20},
	// milc: lattice QCD with scattered accesses, poor spatial locality,
	// high intensity (hurts page-granularity fills).
	"milc": {Name: "milc", FootprintMB: 300, MemRatio: 0.096, StreamFrac: 0.15, ZipfS: 0.30, SpatialLines: 2, RevisitFrac: 0.05, WriteFrac: 0.20},
	// soplex: sparse LP solver, mixed streaming/irregular.
	"soplex": {Name: "soplex", FootprintMB: 250, MemRatio: 0.081, StreamFrac: 0.50, ZipfS: 0.75, SpatialLines: 8, RevisitFrac: 0.15, WriteFrac: 0.15},
	// Mix-only members.
	"gems":   {Name: "gems", FootprintMB: 340, MemRatio: 0.081, StreamFrac: 0.60, ZipfS: 0.60, SpatialLines: 16, RevisitFrac: 0.10, WriteFrac: 0.25},
	"bzip2":  {Name: "bzip2", FootprintMB: 110, MemRatio: 0.042, StreamFrac: 0.55, ZipfS: 0.70, SpatialLines: 10, RevisitFrac: 0.25, WriteFrac: 0.20},
	"leslie": {Name: "leslie", FootprintMB: 160, MemRatio: 0.078, StreamFrac: 0.70, ZipfS: 0.50, SpatialLines: 20, RevisitFrac: 0.10, WriteFrac: 0.30},
	"cactus": {Name: "cactus", FootprintMB: 180, MemRatio: 0.063, StreamFrac: 0.65, ZipfS: 0.55, SpatialLines: 18, RevisitFrac: 0.10, WriteFrac: 0.25},
}

// Mixes of Table 4 (each entry ×2 fills 16 cores).
var mixes = map[string][]string{
	"mix1": {"libquantum", "mcf", "soplex", "milc", "bwaves", "lbm", "omnetpp", "gcc"},
	"mix2": {"libquantum", "mcf", "soplex", "milc", "lbm", "omnetpp", "gems", "bzip2"},
	"mix3": {"mcf", "soplex", "milc", "bwaves", "gcc", "lbm", "leslie", "cactus"},
}

// Names returns the 16 workload names of the evaluation (Fig. 4's
// x-axis) in the paper's display order.
func Names() []string {
	return []string{
		"pagerank", "tri_count", "graph500", "sgd", "lsh",
		"bwaves", "lbm", "mcf", "omnetpp", "libquantum", "gcc", "milc", "soplex",
		"mix1", "mix2", "mix3",
	}
}

// GraphNames returns the graph-suite subset (used by §5.4.1 large pages).
func GraphNames() []string {
	return []string{"pagerank", "tri_count", "graph500", "sgd", "lsh"}
}

// Profiles returns a copy of the profile for name, if it exists.
func Profiles(name string) (Profile, bool) {
	p, ok := profiles[name]
	return p, ok
}

// coreGen produces one core's stream.
type coreGen struct {
	prof     Profile
	rng      *util.RNG
	zipf     *util.Zipf
	base     mem.Addr // region base (0 for shared workloads)
	pages    uint64   // region size in 4 KB pages
	permMul  uint64   // odd multiplier spreading Zipf ranks over pages
	cursor   uint64   // streaming page cursor
	curLine  mem.Addr // current line within an in-progress run
	runLeft  int
	lastPage uint64
	gapMean  float64
}

// Workload is a full machine workload: one stream per core.
type Workload struct {
	name   string
	cores  []coreGen
	shared bool

	// kernels, when non-nil, replaces the parametric per-core streams
	// with graph-kernel-derived streams ("<name>_kernel" workloads).
	kernels   []graph.Kernel
	kernelFP  uint64
	kernelGap float64
}

// Option tweaks workload construction.
type Option func(*options)

type options struct {
	scale     float64 // footprint scale factor
	memRatioX float64 // intensity multiplier
}

// WithScale scales all footprints by f (used to shrink experiments
// proportionally with the DRAM-cache size; see DESIGN.md §3).
func WithScale(f float64) Option {
	return func(o *options) { o.scale = f }
}

// WithIntensity multiplies every profile's MemRatio by f.
func WithIntensity(f float64) Option {
	return func(o *options) { o.memRatioX = f }
}

// New builds the named workload for the given core count. Valid names
// are Names() plus any single profile name. The stream is fully
// determined by (name, cores, seed, options).
func New(name string, cores int, seed uint64, opts ...Option) (*Workload, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("trace: core count must be positive, got %d", cores)
	}
	o := options{scale: 1, memRatioX: 1}
	for _, f := range opts {
		f(&o)
	}
	if members, ok := mixes[name]; ok {
		return newMix(name, members, cores, seed, o)
	}
	if kernel, ok := strings.CutSuffix(name, "_kernel"); ok {
		return newKernelWorkload(name, kernel, cores, seed, o)
	}
	p, ok := profiles[name]
	if !ok {
		return nil, fmt.Errorf("trace: %w %q (valid: %s)",
			errs.ErrUnknownWorkload, name, strings.Join(ValidNames(), ", "))
	}
	w := &Workload{name: name, shared: p.Shared}
	root := util.NewRNG(seed ^ hashName(name))
	if p.Shared {
		pages := footprintPages(p, o)
		for c := 0; c < cores; c++ {
			g := makeGen(p, o, root.Fork(), 0, pages)
			// Cores share the popularity distribution (the alias table
			// is cached by (n, s)) but draw from per-core RNG streams:
			// a core's stream must depend only on (name, cores, seed),
			// never on the order cores are polled in — the replay
			// contract trace capture relies on (see internal/workload).
			g.zipf = util.NewZipf(root.Fork(), zipfSupport(pages), p.ZipfS)
			// Spread streaming cursors so threads cover different parts,
			// as parallel graph kernels do.
			g.cursor = pages * uint64(c) / uint64(cores)
			w.cores = append(w.cores, g)
		}
	} else {
		for c := 0; c < cores; c++ {
			pages := footprintPages(p, o)
			base := regionBase(c)
			g := makeGen(p, o, root.Fork(), base, pages)
			g.zipf = util.NewZipf(root.Fork(), zipfSupport(pages), p.ZipfS)
			w.cores = append(w.cores, g)
		}
	}
	return w, nil
}

func newMix(name string, members []string, cores int, seed uint64, o options) (*Workload, error) {
	w := &Workload{name: name}
	root := util.NewRNG(seed ^ hashName(name))
	for c := 0; c < cores; c++ {
		p, ok := profiles[members[c%len(members)]]
		if !ok {
			return nil, fmt.Errorf("trace: mix %q references unknown profile %q", name, members[c%len(members)])
		}
		pages := footprintPages(p, o)
		g := makeGen(p, o, root.Fork(), regionBase(c), pages)
		g.zipf = util.NewZipf(root.Fork(), zipfSupport(pages), p.ZipfS)
		w.cores = append(w.cores, g)
	}
	return w, nil
}

// regionBase gives core c's private address-space region. Regions are
// spaced 1 TB apart so footprint scaling never overlaps them.
func regionBase(c int) mem.Addr {
	return mem.Addr(uint64(c+1) << 40)
}

func footprintPages(p Profile, o options) uint64 {
	pages := uint64(float64(p.FootprintMB)*o.scale) * (1 << 20) / mem.PageBytes
	if pages < 16 {
		pages = 16
	}
	return pages
}

// zipfSupport bounds the Zipf table size; ranks beyond the support are
// folded over the page range by the multiplicative permutation.
func zipfSupport(pages uint64) int {
	const maxSupport = 1 << 17
	if pages < maxSupport {
		return int(pages)
	}
	return maxSupport
}

func makeGen(p Profile, o options, rng *util.RNG, base mem.Addr, pages uint64) coreGen {
	ratio := p.MemRatio * o.memRatioX
	if ratio <= 0 {
		ratio = 0.01
	}
	return coreGen{
		prof:    p,
		rng:     rng,
		base:    base,
		pages:   pages,
		permMul: 0x9E3779B97F4A7C15 | 1,
		gapMean: 1/ratio - 1,
	}
}

// newKernelWorkload builds a graph-kernel-derived workload: a shared
// synthetic graph sized from the matching parametric profile's
// footprint, with one kernel instance per core. These are the
// higher-fidelity cross-check variants of the graph suite (see package
// comment and DESIGN.md §5).
func newKernelWorkload(name, kernel string, cores int, seed uint64, o options) (*Workload, error) {
	p, ok := profiles[kernel]
	if !ok || !p.Shared {
		return nil, fmt.Errorf("trace: no graph profile behind %q", name)
	}
	// Size the graph so its CSR footprint matches the profile's scaled
	// footprint: span ≈ (3V + E + 1) words, E = 8V ⇒ V ≈ bytes/(11·8).
	bytes := float64(p.FootprintMB) * o.scale * (1 << 20)
	vertices := int(bytes / (11 * 8))
	if vertices < 4096 {
		vertices = 4096
	}
	g := graph.New(graph.Config{
		Vertices:  vertices,
		AvgDegree: 8,
		Skew:      p.ZipfS,
		Seed:      seed ^ hashName(name),
	})
	w := &Workload{name: name, shared: true, kernelFP: g.FootprintBytes()}
	ratio := p.MemRatio * o.memRatioX
	if ratio <= 0 {
		ratio = 0.01
	}
	w.kernelGap = 1/ratio - 1
	for c := 0; c < cores; c++ {
		k, err := graph.NewKernel(kernel, g, c, cores, seed+uint64(c))
		if err != nil {
			return nil, err
		}
		w.kernels = append(w.kernels, k)
	}
	return w, nil
}

// KernelNames lists the graph-kernel workload variants.
func KernelNames() []string {
	out := make([]string, 0, len(GraphNames()))
	for _, n := range GraphNames() {
		out = append(out, n+"_kernel")
	}
	return out
}

// Name returns the workload name.
func (w *Workload) Name() string { return w.name }

// Cores returns the number of per-core streams.
func (w *Workload) Cores() int {
	if w.kernels != nil {
		return len(w.kernels)
	}
	return len(w.cores)
}

// Shared reports whether all cores share one address space.
func (w *Workload) Shared() bool { return w.shared }

// Footprint returns the total footprint in bytes across all regions.
func (w *Workload) Footprint() uint64 {
	if w.kernels != nil {
		return w.kernelFP
	}
	if w.shared {
		return w.cores[0].pages * mem.PageBytes
	}
	var total uint64
	for i := range w.cores {
		total += w.cores[i].pages * mem.PageBytes
	}
	return total
}

// Next produces the next event of core c's stream.
func (w *Workload) Next(c int) Event {
	if w.kernels != nil {
		r := w.kernels[c].Next()
		// Kernel gaps encode relative compute density; rescale them so
		// the workload's overall intensity matches its profile.
		gap := int(float64(r.Gap) * w.kernelGap / 4)
		return Event{Gap: gap, Addr: mem.Addr(r.Addr), Write: r.Write}
	}
	return w.cores[c].next()
}

func (g *coreGen) next() Event {
	// Continue an in-progress spatial run: consecutive lines in a page.
	if g.runLeft > 0 {
		g.runLeft--
		addr := g.curLine
		g.curLine += mem.LineBytes
		return Event{
			Gap:   g.gap(),
			Addr:  addr,
			Write: g.rng.Bool(g.prof.WriteFrac),
		}
	}
	// Start a new page visit.
	var page uint64
	switch {
	case g.rng.Bool(g.prof.StreamFrac):
		page = g.cursor % g.pages
		g.cursor++
	case g.prof.RevisitFrac > 0 && g.rng.Bool(g.prof.RevisitFrac):
		page = g.lastPage
	default:
		rank := uint64(g.zipf.Next())
		// Spread ranks over the page range so hot pages are not
		// physically clustered.
		page = (rank * g.permMul) % g.pages
	}
	g.lastPage = page

	run := g.runLen()
	startLine := 0
	if run < mem.LinesPerPage {
		// Revisits of a page touch mostly the *same* lines: objects sit
		// at fixed offsets within their page. A deterministic,
		// page-dependent start offset models that; a small random
		// fraction of visits wander to model secondary objects.
		span := mem.LinesPerPage - run + 1
		if g.rng.Bool(0.5) {
			startLine = g.rng.Intn(span)
		} else {
			startLine = int((page * 0x9E3779B97F4A7C15 >> 32) % uint64(span))
		}
	}
	g.curLine = g.base + mem.Addr(page*mem.PageBytes) + mem.Addr(startLine*mem.LineBytes)
	g.runLeft = run - 1
	addr := g.curLine
	g.curLine += mem.LineBytes
	return Event{
		Gap:   g.gap(),
		Addr:  addr,
		Write: g.rng.Bool(g.prof.WriteFrac),
	}
}

// runLen draws the number of consecutive lines for a page visit,
// jittered ±50% around the profile's SpatialLines and clamped to a page.
func (g *coreGen) runLen() int {
	n := g.prof.SpatialLines
	if n <= 1 {
		return 1
	}
	lo := (n + 1) / 2
	r := lo + g.rng.Intn(n)
	if r > mem.LinesPerPage {
		r = mem.LinesPerPage
	}
	return r
}

// gap draws the non-memory instruction gap (exponential around gapMean).
func (g *coreGen) gap() int {
	if g.gapMean <= 0 {
		return 0
	}
	u := g.rng.Float64()
	if u <= 0 {
		u = 1e-12
	}
	return int(-math.Log(u) * g.gapMean)
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// AllProfiles returns all registered profile names, sorted (diagnostic).
func AllProfiles() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ValidNames returns every name New accepts — profiles, mixes, and
// graph-kernel variants — sorted. Unknown-workload errors cite it.
func ValidNames() []string {
	out := make([]string, 0, len(profiles)+len(mixes)+len(GraphNames()))
	for n := range profiles {
		out = append(out, n)
	}
	for n := range mixes {
		out = append(out, n)
	}
	out = append(out, KernelNames()...)
	sort.Strings(out)
	return out
}

// Known reports whether New would accept name.
func Known(name string) bool {
	if _, ok := profiles[name]; ok {
		return true
	}
	if _, ok := mixes[name]; ok {
		return true
	}
	if kernel, ok := strings.CutSuffix(name, "_kernel"); ok {
		if p, ok := profiles[kernel]; ok && p.Shared {
			return true
		}
	}
	return false
}
