package tracefile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"banshee/internal/trace"
)

// Writer streams a trace to an io.Writer. Events are buffered per core
// and emitted as framed chunks; the index and footer are written at
// Close, so the destination never needs to seek. The steady-state
// Append path reuses per-core buffers and allocates nothing once they
// have grown to chunk size.
//
// Chunks appear in the file in flush order: a core's chunk is emitted
// the moment its buffer reaches ChunkEvents, and partial tail chunks
// are emitted at Close in core order. The same append sequence
// therefore always produces byte-identical files — the determinism the
// golden and round-trip tests pin.
type Writer struct {
	dst    io.Writer
	closer io.Closer // set when the Writer owns the destination file
	meta   Meta
	off    uint64 // bytes written so far
	cores  []coreEnc
	index  []indexEntry
	total  uint64
	closed bool
	err    error
}

type coreEnc struct {
	buf     []byte
	events  uint32
	prev    uint64 // previous event's address (delta base)
	written uint64 // events already flushed (firstEvent counter)
}

type indexEntry struct {
	offset     uint64
	firstEvent uint64
	core       uint32
	events     uint32
	payloadLen uint32
}

// NewWriter starts a trace on w. The header is written immediately.
func NewWriter(w io.Writer, meta Meta) (*Writer, error) {
	if meta.Cores <= 0 || meta.Cores > MaxCores {
		return nil, fmt.Errorf("tracefile: core count %d out of [1,%d]", meta.Cores, MaxCores)
	}
	if len(meta.Name) > 1<<10 {
		return nil, fmt.Errorf("tracefile: workload name too long (%d bytes)", len(meta.Name))
	}
	tw := &Writer{dst: w, meta: meta, cores: make([]coreEnc, meta.Cores)}
	for i := range tw.cores {
		tw.cores[i].buf = make([]byte, 0, ChunkEvents*4)
	}
	var hdr [headerFixedLen]byte
	copy(hdr[0:], magicHeader[:])
	putU16(hdr[4:], Version)
	var flags uint16
	if meta.Shared {
		flags |= flagShared
	}
	putU16(hdr[6:], flags)
	putU32(hdr[8:], uint32(meta.Cores))
	putU32(hdr[12:], uint32(len(meta.Name)))
	putU64(hdr[16:], meta.Footprint)
	crc := crc32.Checksum(hdr[:24], castagnoli)
	crc = crc32.Update(crc, castagnoli, []byte(meta.Name))
	putU32(hdr[24:], crc)
	putU32(hdr[28:], 0) // reserved
	if err := tw.write(hdr[:]); err != nil {
		return nil, err
	}
	if err := tw.write([]byte(meta.Name)); err != nil {
		return nil, err
	}
	return tw, nil
}

// Create opens path and starts a trace on it, buffering writes. Close
// flushes and closes the file.
func Create(path string, meta Meta) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	tw, err := NewWriter(bw, meta)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	tw.closer = &fileFlusher{bw: bw, f: f}
	return tw, nil
}

// fileFlusher flushes the bufio layer before closing the file.
type fileFlusher struct {
	bw *bufio.Writer
	f  *os.File
}

func (ff *fileFlusher) Close() error {
	if err := ff.bw.Flush(); err != nil {
		ff.f.Close()
		return err
	}
	return ff.f.Close()
}

// Append records core's next event. Events of one core must be
// appended in stream order; cores may interleave arbitrarily.
func (w *Writer) Append(core int, ev trace.Event) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("tracefile: Append after Close")
	}
	if core < 0 || core >= len(w.cores) {
		return fmt.Errorf("tracefile: core %d out of range [0,%d)", core, len(w.cores))
	}
	if ev.Gap < 0 {
		return fmt.Errorf("tracefile: negative gap %d", ev.Gap)
	}
	c := &w.cores[core]
	v1 := uint64(ev.Gap) << 1
	if ev.Write {
		v1 |= 1
	}
	c.buf = binary.AppendUvarint(c.buf, v1)
	c.buf = binary.AppendUvarint(c.buf, zigzag(int64(uint64(ev.Addr)-c.prev)))
	c.prev = uint64(ev.Addr)
	c.events++
	w.total++
	if c.events == ChunkEvents {
		return w.flushChunk(core)
	}
	return nil
}

// flushChunk frames core's pending buffer out to the destination.
func (w *Writer) flushChunk(core int) error {
	c := &w.cores[core]
	if c.events == 0 {
		return nil
	}
	var frame [chunkFrameLen]byte
	copy(frame[0:], magicChunk[:])
	putU32(frame[4:], uint32(core))
	putU32(frame[8:], c.events)
	putU32(frame[12:], uint32(len(c.buf)))
	putU32(frame[16:], crc32.Checksum(c.buf, castagnoli))
	w.index = append(w.index, indexEntry{
		offset:     w.off,
		firstEvent: c.written,
		core:       uint32(core),
		events:     c.events,
		payloadLen: uint32(len(c.buf)),
	})
	if err := w.write(frame[:]); err != nil {
		return err
	}
	if err := w.write(c.buf); err != nil {
		return err
	}
	c.written += uint64(c.events)
	c.buf = c.buf[:0]
	c.events = 0
	c.prev = 0 // deltas reset at chunk boundaries
	return nil
}

// Close flushes partial chunks, writes the index and footer, and closes
// the destination when the Writer owns it.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	// A write error during Append means events were dropped; finishing
	// the file would produce a plausible-looking but incomplete trace.
	if w.err != nil {
		return w.closeDst(w.err)
	}
	for core := range w.cores {
		if err := w.flushChunk(core); err != nil {
			return w.closeDst(err)
		}
	}
	indexOffset := w.off
	var head [8]byte
	copy(head[0:], magicIndex[:])
	putU32(head[4:], uint32(len(w.index)))
	if err := w.write(head[:]); err != nil {
		return w.closeDst(err)
	}
	entries := make([]byte, len(w.index)*indexEntryLen)
	for i, e := range w.index {
		b := entries[i*indexEntryLen:]
		putU64(b[0:], e.offset)
		putU64(b[8:], e.firstEvent)
		putU32(b[16:], e.core)
		putU32(b[20:], e.events)
		putU32(b[24:], e.payloadLen)
	}
	if err := w.write(entries); err != nil {
		return w.closeDst(err)
	}
	var crc [4]byte
	putU32(crc[:], crc32.Checksum(entries, castagnoli))
	if err := w.write(crc[:]); err != nil {
		return w.closeDst(err)
	}
	var foot [footerLen]byte
	putU64(foot[0:], indexOffset)
	putU64(foot[8:], w.total)
	putU32(foot[16:], crc32.Checksum(foot[:16], castagnoli))
	copy(foot[20:], magicEnd[:])
	if err := w.write(foot[:]); err != nil {
		return w.closeDst(err)
	}
	return w.closeDst(nil)
}

func (w *Writer) closeDst(err error) error {
	if w.closer != nil {
		if cerr := w.closer.Close(); err == nil {
			err = cerr
		}
		w.closer = nil
	}
	if w.err == nil {
		w.err = err
	}
	return err
}

func (w *Writer) write(b []byte) error {
	if _, err := w.dst.Write(b); err != nil {
		w.err = err
		return err
	}
	w.off += uint64(len(b))
	return nil
}

// Events returns the number of events appended so far.
func (w *Writer) Events() uint64 { return w.total }
