// Package tracefile is the on-disk trace format (.btrc) of the
// capture/replay subsystem: a compact, versioned, checksummed binary
// encoding of per-core memory-reference streams. A recorded workload
// replays bit-identically through the simulator, so pin-style traces —
// or expensive synthetic streams — become durable artifacts that sweeps
// replay instead of regenerating.
//
// # Layout (version 1, all integers little-endian)
//
//	header   "BTRC" u16:version u16:flags u32:cores u32:nameLen
//	         u64:footprintBytes u32:crc32c u32:reserved(0)  [nameLen]name
//	         (crc32c covers the 24 header bytes before it plus the name)
//	chunks   repeated frames, each:
//	         "CHNK" u32:core u32:events u32:payloadLen u32:crc32c  [payload]
//	index    "INDX" u32:chunkCount  chunkCount × entry  u32:crc32c(entries)
//	         entry: u64:offset u64:firstEvent u32:core u32:events u32:payloadLen
//	footer   u64:indexOffset u64:totalEvents u32:crc32c(prev 16 bytes) "BTRE"
//
// Events are encoded inside a chunk as two uvarints each:
//
//	v1 = gap<<1 | writeBit
//	v2 = zigzag(addr − prevAddr)
//
// where prevAddr resets to 0 at every chunk boundary, making each chunk
// independently decodable from its index entry. Chunks hold up to
// ChunkEvents events of one core's stream; a typical synthetic stream
// encodes to ~3 bytes/event.
//
// The Writer streams to any io.Writer (index and footer are emitted at
// Close, so no seeking is needed) and the Reader replays from any
// io.ReaderAt, loading one chunk per core at a time into preallocated
// buffers — multi-GB traces replay without being held in memory and
// the steady-state Next path performs zero allocations. Every chunk
// payload is CRC-32C-checked when loaded; the index and footer are
// checked at Open. DESIGN.md §8 documents the format in full.
package tracefile

import (
	"fmt"
	"hash/crc32"

	"banshee/internal/errs"
)

// Format constants. Version bumps when the layout or event encoding
// changes; readers reject versions they do not understand.
const (
	Version = 1

	// ChunkEvents is the number of events per full chunk. Smaller chunks
	// seek finer but pay more framing; 4096 events ≈ 12 KB keeps both
	// negligible.
	ChunkEvents = 4096

	// MaxCores bounds the per-core state a reader allocates from an
	// untrusted header.
	MaxCores = 4096
)

// Section magics.
var (
	magicHeader = [4]byte{'B', 'T', 'R', 'C'}
	magicChunk  = [4]byte{'C', 'H', 'N', 'K'}
	magicIndex  = [4]byte{'I', 'N', 'D', 'X'}
	magicEnd    = [4]byte{'B', 'T', 'R', 'E'}
)

// Fixed section sizes.
const (
	headerFixedLen = 32
	chunkFrameLen  = 20 // magic + core + events + payloadLen + crc
	indexEntryLen  = 28 // offset + firstEvent + core + events + payloadLen
	footerLen      = 24 // indexOffset + totalEvents + crc + end magic
)

// Header flag bits.
const flagShared = 1 << 0

// castagnoli is the CRC-32C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Meta describes the recorded workload. It is written into the header
// and recovered verbatim on open.
type Meta struct {
	// Name is the recorded workload's name (e.g. "mcf"), not the file
	// path.
	Name string
	// Cores is the number of per-core streams in the trace.
	Cores int
	// Shared marks a shared address space (multithreaded workloads).
	Shared bool
	// Footprint is the workload's declared footprint in bytes.
	Footprint uint64
}

// ErrCorrupt is wrapped by every structural-damage error the decoder
// returns, so callers can distinguish corruption from I/O failures. It
// is the shared errs.ErrTraceCorrupt sentinel (re-exported publicly as
// banshee.ErrTraceCorrupt), so a match holds across layers.
var ErrCorrupt = errs.ErrTraceCorrupt

func corruptf(format string, args ...interface{}) error {
	return fmt.Errorf("tracefile: %w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// zigzag folds a signed delta into an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Little-endian scratch helpers. encoding/binary's ByteOrder methods
// are equivalent but these keep the call sites terse.
func putU16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }
func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}
func getU16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }
func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}
