package tracefile_test

import (
	"bytes"
	"testing"

	"banshee/internal/trace"
	"banshee/internal/tracefile"
	"banshee/internal/workload"
)

// recordBytes captures eventsPerCore events of every core of src into
// an in-memory trace, appending round-robin (the same order
// workload.Record uses, so files are comparable byte-for-byte).
func recordBytes(t testing.TB, src workload.Source, eventsPerCore int) []byte {
	t.Helper()
	var buf bytes.Buffer
	meta := tracefile.Meta{Name: src.Name(), Cores: src.Cores(), Footprint: src.Footprint()}
	if sh, ok := src.(interface{ Shared() bool }); ok {
		meta.Shared = sh.Shared()
	}
	w, err := tracefile.NewWriter(&buf, meta)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < eventsPerCore; e++ {
		for c := 0; c < src.Cores(); c++ {
			if err := w.Append(c, src.Next(c)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openBytes(t testing.TB, data []byte) *tracefile.Reader {
	t.Helper()
	r, err := tracefile.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// smallCfg keeps every workload — including the graph-kernel variants,
// whose backing graphs hit their 4096-vertex floor at this scale —
// cheap enough to round-trip in a unit test.
var smallCfg = workload.Config{Cores: 2, Seed: 5, Scale: 1e-4, Intensity: 1}

// TestRoundTripAllWorkloads records every registered workload, replays
// it, and checks (a) the replayed events equal a freshly generated
// stream and (b) re-encoding the replayed stream reproduces the file
// byte-for-byte.
func TestRoundTripAllWorkloads(t *testing.T) {
	const perCore = 1500
	for _, name := range workload.Names() {
		src, err := workload.Open(name, smallCfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		data := recordBytes(t, src, perCore)

		// Replayed events must equal a second, independent generation.
		r := openBytes(t, data)
		if r.Name() != name || r.Cores() != smallCfg.Cores {
			t.Fatalf("%s: meta lost: %q/%d cores", name, r.Name(), r.Cores())
		}
		fresh, err := workload.Open(name, smallCfg)
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < perCore; e++ {
			for c := 0; c < smallCfg.Cores; c++ {
				got, want := r.Next(c), fresh.Next(c)
				if got != want {
					t.Fatalf("%s: core %d event %d: replayed %+v, generated %+v", name, c, e, got, want)
				}
			}
		}
		if err := r.Err(); err != nil {
			t.Fatalf("%s: replay error: %v", name, err)
		}
		if r.Wrapped() {
			t.Fatalf("%s: replay wrapped within recorded length", name)
		}

		// Re-encoding the replayed stream must reproduce the bytes.
		r.Rewind()
		var buf2 bytes.Buffer
		w2, err := tracefile.NewWriter(&buf2, r.Meta())
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < perCore; e++ {
			for c := 0; c < smallCfg.Cores; c++ {
				if err := w2.Append(c, r.Next(c)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, buf2.Bytes()) {
			t.Fatalf("%s: re-encode not byte-identical (%d vs %d bytes)", name, len(data), buf2.Len())
		}
	}
}

// TestRecordDeterminism pins capture determinism: the same (name,
// cores, seed) records byte-identical files, and a different seed
// records a different stream.
func TestRecordDeterminism(t *testing.T) {
	mk := func(seed uint64) []byte {
		cfg := smallCfg
		cfg.Seed = seed
		src, err := workload.Open("mcf", cfg)
		if err != nil {
			t.Fatal(err)
		}
		return recordBytes(t, src, 2000)
	}
	a, b := mk(5), mk(5)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed did not record byte-identical files")
	}
	if bytes.Equal(a, mk(6)) {
		t.Fatal("different seeds recorded identical files")
	}
}

// TestMultiChunkStreams exercises streams long enough to span several
// chunks per core, including the partial tail chunk.
func TestMultiChunkStreams(t *testing.T) {
	const perCore = 3*tracefile.ChunkEvents + 100
	src, err := workload.Open("gcc", smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	data := recordBytes(t, src, perCore)
	r := openBytes(t, data)
	if got := r.CoreEvents(0); got != perCore {
		t.Fatalf("core 0 recorded %d events, want %d", got, perCore)
	}
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	fresh, err := workload.Open("gcc", smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < perCore; e++ {
		for c := 0; c < smallCfg.Cores; c++ {
			if got, want := r.Next(c), fresh.Next(c); got != want {
				t.Fatalf("core %d event %d: %+v != %+v", c, e, got, want)
			}
		}
	}
}

// TestWrapAround: an exhausted stream restarts from its beginning and
// reports Wrapped.
func TestWrapAround(t *testing.T) {
	const perCore = 100
	src, err := workload.Open("gcc", workload.Config{Cores: 1, Seed: 9, Scale: 1e-4, Intensity: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := recordBytes(t, src, perCore)
	r := openBytes(t, data)
	var first [perCore]trace.Event
	for i := range first {
		first[i] = r.Next(0)
	}
	if r.Wrapped() {
		t.Fatal("wrapped before stream end")
	}
	for i := 0; i < perCore; i++ {
		if ev := r.Next(0); ev != first[i] {
			t.Fatalf("wrapped event %d: %+v != %+v", i, ev, first[i])
		}
	}
	if !r.Wrapped() {
		t.Fatal("wrap not reported")
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestRewind resets replay to the start of every stream.
func TestRewind(t *testing.T) {
	src, err := workload.Open("mcf", smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	r := openBytes(t, recordBytes(t, src, 500))
	a0, a1 := r.Next(0), r.Next(1)
	for i := 0; i < 300; i++ {
		r.Next(0)
		r.Next(1)
	}
	r.Rewind()
	if got := r.Next(0); got != a0 {
		t.Fatalf("rewound core 0: %+v != %+v", got, a0)
	}
	if got := r.Next(1); got != a1 {
		t.Fatalf("rewound core 1: %+v != %+v", got, a1)
	}
	if r.Wrapped() {
		t.Fatal("Rewind did not clear wrap marker")
	}
}

// TestReaderZeroAlloc pins the acceptance criterion: the steady-state
// replay path — including chunk reloads, which hit the preallocated
// per-core buffers — performs zero allocations per Next.
func TestReaderZeroAlloc(t *testing.T) {
	src, err := workload.Open("mcf", workload.Config{Cores: 2, Seed: 3, Scale: 1e-3, Intensity: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := recordBytes(t, src, 2*tracefile.ChunkEvents+500)
	r := openBytes(t, data)
	for i := 0; i < 100; i++ {
		r.Next(0)
		r.Next(1)
	}
	var c int
	avg := testing.AllocsPerRun(3*tracefile.ChunkEvents, func() {
		r.Next(c & 1)
		c++
	})
	if avg != 0 {
		t.Fatalf("Reader.Next allocates %v per event, want 0", avg)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestEveryByteFlipDetected: all four sections (header, chunks, index,
// footer) are checksummed, so corrupting any single byte of a trace
// must be detected by Open or Verify.
func TestEveryByteFlipDetected(t *testing.T) {
	src, err := workload.Open("gcc", workload.Config{Cores: 1, Seed: 2, Scale: 1e-4, Intensity: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := recordBytes(t, src, 300)
	for i := range data {
		mut := bytes.Clone(data)
		mut[i] ^= 0xFF
		r, err := tracefile.NewReader(bytes.NewReader(mut), int64(len(mut)))
		if err == nil {
			err = r.Verify()
		}
		if err == nil {
			t.Errorf("byte flip at offset %d undetected", i)
		}
	}
}

// TestTruncationsRejected: every proper prefix of a trace must fail to
// open (the footer is gone or misplaced).
func TestTruncationsRejected(t *testing.T) {
	src, err := workload.Open("gcc", workload.Config{Cores: 1, Seed: 2, Scale: 1e-4, Intensity: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := recordBytes(t, src, 300)
	for n := 0; n < len(data); n++ {
		if _, err := tracefile.NewReader(bytes.NewReader(data[:n]), int64(n)); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", n, len(data))
		}
	}
}

// TestWriterValidation covers the writer's misuse errors.
func TestWriterValidation(t *testing.T) {
	if _, err := tracefile.NewWriter(&bytes.Buffer{}, tracefile.Meta{Cores: 0}); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := tracefile.NewWriter(&bytes.Buffer{}, tracefile.Meta{Cores: tracefile.MaxCores + 1}); err == nil {
		t.Error("excessive cores accepted")
	}
	w, err := tracefile.NewWriter(&bytes.Buffer{}, tracefile.Meta{Name: "x", Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, trace.Event{}); err == nil {
		t.Error("out-of-range core accepted")
	}
	if err := w.Append(0, trace.Event{Gap: -1}); err == nil {
		t.Error("negative gap accepted")
	}
	if err := w.Append(0, trace.Event{Gap: 1, Addr: 64}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, trace.Event{}); err == nil {
		t.Error("Append after Close accepted")
	}
}

// TestFileRoundTrip exercises the Create/Open file path (as opposed to
// the in-memory Writer/Reader used elsewhere).
func TestFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/t.btrc"
	cfg := workload.Config{Cores: 2, Seed: 11, Scale: 1e-4, Intensity: 1}
	if err := workload.Record(path, "soplex", cfg, 1200); err != nil {
		t.Fatal(err)
	}
	r, err := tracefile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Name() != "soplex" || r.Cores() != 2 || r.TotalEvents() != 2400 {
		t.Fatalf("meta mismatch: %q %d cores %d events", r.Name(), r.Cores(), r.TotalEvents())
	}
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	fresh, err := workload.Open("soplex", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 1200; e++ {
		for c := 0; c < 2; c++ {
			if got, want := r.Next(c), fresh.Next(c); got != want {
				t.Fatalf("core %d event %d: %+v != %+v", c, e, got, want)
			}
		}
	}
}
