package tracefile_test

import (
	"bytes"
	"testing"

	"banshee/internal/tracefile"
	"banshee/internal/workload"
)

// FuzzReader is the decoder robustness target: arbitrary bytes fed to
// the reader must either fail cleanly at Open/Verify or replay without
// panicking — never crash, hang, or allocate beyond what the claimed
// file size justifies (every count and length in the format is
// validated against the file size before allocation; see NewReader).
func FuzzReader(f *testing.F) {
	src, err := workload.Open("gcc", workload.Config{Cores: 2, Seed: 2, Scale: 1e-4, Intensity: 1})
	if err != nil {
		f.Fatal(err)
	}
	valid := recordBytes(f, src, 600)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("BTRC"))
	f.Add(valid[:len(valid)/2]) // truncated mid-chunk
	f.Add(valid[:len(valid)-5]) // footer clipped
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	for _, off := range []int{5, 9, 30, 80, len(valid) - 30, len(valid) - 2} {
		mut := bytes.Clone(valid)
		mut[off] ^= 0x40
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := tracefile.NewReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		if err := r.Verify(); err != nil {
			return
		}
		// Structurally valid input: replay a bounded slice of every
		// stream, past the wrap point, and require a clean Err.
		for c := 0; c < r.Cores(); c++ {
			n := r.CoreEvents(c) + 10
			if n > 1<<14 {
				n = 1 << 14
			}
			for i := uint64(0); i < n && r.Err() == nil; i++ {
				r.Next(c)
			}
		}
		// Verify passed, so replay must not hit decode errors (only
		// cores with no recorded events may object).
		if err := r.Err(); err != nil {
			for c := 0; c < r.Cores(); c++ {
				if r.CoreEvents(c) == 0 {
					return
				}
			}
			t.Fatalf("Verify passed but replay failed: %v", err)
		}
	})
}
