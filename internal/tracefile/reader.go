package tracefile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"banshee/internal/mem"
	"banshee/internal/trace"
)

// Reader replays a trace from an io.ReaderAt. Open validates the
// header, footer, and the whole chunk index up front (work bounded by
// the index size, not the trace size); chunk payloads are loaded and
// CRC-checked lazily, one chunk per core at a time, into buffers
// preallocated from the index — so multi-GB traces replay without
// being held in memory and the steady-state Next path allocates
// nothing.
//
// Reader implements the workload Source contract (Name, Cores,
// Footprint, Next), so an opened trace plugs directly into the
// simulator. Next cannot return an error; decode failures after a
// successful Open latch into Err and Next returns zero events from
// then on. A core whose recorded stream is exhausted wraps around to
// its beginning and sets Wrapped — callers that need exact replay
// (e.g. the record→replay identity test) check Wrapped after the run.
type Reader struct {
	src     io.ReaderAt
	closer  io.Closer // set when the Reader owns the file
	meta    Meta
	chunks  []indexEntry
	cores   []coreDec
	total   uint64
	wrapped bool
	err     error
}

type coreDec struct {
	list      []int32 // indices into chunks, stream order
	li        int     // next chunk in list to load
	buf       []byte  // frame + payload of the current chunk (reused)
	payload   []byte  // buf's payload portion
	pos       int
	remaining uint32
	prev      uint64 // previous decoded address (delta base)
	events    uint64 // total recorded events of this core
}

// Open opens a trace file for replay. Close releases the file.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r, err := NewReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// NewReader opens a trace held in any random-access source of the
// given size. Every structural claim the untrusted input makes (counts,
// offsets, lengths) is validated against size before being used to
// allocate or read, so garbage input fails cleanly instead of
// panicking or over-allocating.
func NewReader(src io.ReaderAt, size int64) (*Reader, error) {
	r := &Reader{src: src}
	if size < headerFixedLen+footerLen {
		return nil, corruptf("file too short (%d bytes)", size)
	}

	// Header.
	var hdr [headerFixedLen]byte
	if _, err := src.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("tracefile: read header: %w", err)
	}
	if !bytes.Equal(hdr[0:4], magicHeader[:]) {
		return nil, corruptf("bad magic %q", hdr[0:4])
	}
	if v := getU16(hdr[4:]); v != Version {
		return nil, fmt.Errorf("tracefile: unsupported version %d (have %d)", v, Version)
	}
	flags := getU16(hdr[6:])
	cores := getU32(hdr[8:])
	nameLen := getU32(hdr[12:])
	if cores == 0 || cores > MaxCores {
		return nil, corruptf("core count %d out of [1,%d]", cores, MaxCores)
	}
	if nameLen > 1<<10 || int64(headerFixedLen+nameLen+footerLen) > size {
		return nil, corruptf("name length %d overruns file", nameLen)
	}
	if getU32(hdr[28:]) != 0 {
		return nil, corruptf("reserved header bytes set")
	}
	name := make([]byte, nameLen)
	if _, err := src.ReadAt(name, headerFixedLen); err != nil {
		return nil, fmt.Errorf("tracefile: read name: %w", err)
	}
	crc := crc32.Checksum(hdr[:24], castagnoli)
	crc = crc32.Update(crc, castagnoli, name)
	if getU32(hdr[24:]) != crc {
		return nil, corruptf("header checksum mismatch")
	}
	r.meta = Meta{
		Name:      string(name),
		Cores:     int(cores),
		Shared:    flags&flagShared != 0,
		Footprint: getU64(hdr[16:]),
	}
	headerEnd := uint64(headerFixedLen + nameLen)

	// Footer.
	var foot [footerLen]byte
	if _, err := src.ReadAt(foot[:], size-footerLen); err != nil {
		return nil, fmt.Errorf("tracefile: read footer: %w", err)
	}
	if !bytes.Equal(foot[20:24], magicEnd[:]) {
		return nil, corruptf("bad end magic %q", foot[20:24])
	}
	if getU32(foot[16:]) != crc32.Checksum(foot[:16], castagnoli) {
		return nil, corruptf("footer checksum mismatch")
	}
	indexOffset := getU64(foot[0:])
	r.total = getU64(foot[8:])
	indexEnd := uint64(size - footerLen)
	if indexOffset < headerEnd || indexOffset+8+4 > indexEnd {
		return nil, corruptf("index offset %d out of bounds", indexOffset)
	}

	// Index.
	var ih [8]byte
	if _, err := src.ReadAt(ih[:], int64(indexOffset)); err != nil {
		return nil, fmt.Errorf("tracefile: read index: %w", err)
	}
	if !bytes.Equal(ih[0:4], magicIndex[:]) {
		return nil, corruptf("bad index magic %q", ih[0:4])
	}
	chunkCount := getU32(ih[4:])
	if indexOffset+8+uint64(chunkCount)*indexEntryLen+4 != indexEnd {
		return nil, corruptf("index size mismatch (%d chunks)", chunkCount)
	}
	entries := make([]byte, int(chunkCount)*indexEntryLen)
	if _, err := src.ReadAt(entries, int64(indexOffset)+8); err != nil {
		return nil, fmt.Errorf("tracefile: read index entries: %w", err)
	}
	var crcb [4]byte
	if _, err := src.ReadAt(crcb[:], int64(indexEnd)-4); err != nil {
		return nil, fmt.Errorf("tracefile: read index checksum: %w", err)
	}
	if getU32(crcb[:]) != crc32.Checksum(entries, castagnoli) {
		return nil, corruptf("index checksum mismatch")
	}

	// Entries: chunks must tile [headerEnd, indexOffset) exactly, in
	// order, with per-core firstEvent counters that add up.
	r.chunks = make([]indexEntry, chunkCount)
	r.cores = make([]coreDec, cores)
	maxPayload := make([]uint32, cores)
	next := headerEnd
	var total uint64
	for i := range r.chunks {
		b := entries[i*indexEntryLen:]
		e := indexEntry{
			offset:     getU64(b[0:]),
			firstEvent: getU64(b[8:]),
			core:       getU32(b[16:]),
			events:     getU32(b[20:]),
			payloadLen: getU32(b[24:]),
		}
		if e.core >= cores {
			return nil, corruptf("chunk %d: core %d out of range", i, e.core)
		}
		if e.events == 0 || e.events > ChunkEvents {
			return nil, corruptf("chunk %d: event count %d out of [1,%d]", i, e.events, ChunkEvents)
		}
		if uint64(e.payloadLen) < 2*uint64(e.events) || uint64(e.payloadLen) > indexOffset {
			return nil, corruptf("chunk %d: payload length %d inconsistent with %d events", i, e.payloadLen, e.events)
		}
		if e.offset != next {
			return nil, corruptf("chunk %d: offset %d, want %d", i, e.offset, next)
		}
		next = e.offset + chunkFrameLen + uint64(e.payloadLen)
		if next > indexOffset {
			return nil, corruptf("chunk %d overruns index", i)
		}
		d := &r.cores[e.core]
		if e.firstEvent != d.events {
			return nil, corruptf("chunk %d: firstEvent %d, want %d", i, e.firstEvent, d.events)
		}
		d.events += uint64(e.events)
		d.list = append(d.list, int32(i))
		if e.payloadLen > maxPayload[e.core] {
			maxPayload[e.core] = e.payloadLen
		}
		total += uint64(e.events)
		r.chunks[i] = e
	}
	if next != indexOffset {
		return nil, corruptf("chunks end at %d, index starts at %d", next, indexOffset)
	}
	if total != r.total {
		return nil, corruptf("footer claims %d events, chunks hold %d", r.total, total)
	}
	// Preallocate each core's chunk buffer to its largest chunk, so the
	// replay path never allocates. The sum is bounded by the file size.
	for c := range r.cores {
		if maxPayload[c] > 0 {
			r.cores[c].buf = make([]byte, chunkFrameLen+int(maxPayload[c]))
		}
	}
	return r, nil
}

// Meta returns the recorded workload's description.
func (r *Reader) Meta() Meta { return r.meta }

// Name returns the recorded workload's name.
func (r *Reader) Name() string { return r.meta.Name }

// Cores returns the number of per-core streams.
func (r *Reader) Cores() int { return len(r.cores) }

// Shared reports whether the recorded workload shared one address space.
func (r *Reader) Shared() bool { return r.meta.Shared }

// Footprint returns the recorded workload's declared footprint.
func (r *Reader) Footprint() uint64 { return r.meta.Footprint }

// TotalEvents returns the number of recorded events across all cores.
func (r *Reader) TotalEvents() uint64 { return r.total }

// CoreEvents returns the number of recorded events of one core.
func (r *Reader) CoreEvents(core int) uint64 { return r.cores[core].events }

// Wrapped reports whether any core's stream was replayed past its end
// and restarted from the beginning.
func (r *Reader) Wrapped() bool { return r.wrapped }

// Err returns the first decode or I/O error hit during replay.
func (r *Reader) Err() error { return r.err }

// Next returns core's next recorded event, wrapping to the start of
// the stream when it is exhausted. On error it latches Err and returns
// the zero event.
func (r *Reader) Next(core int) trace.Event {
	if r.err != nil {
		return trace.Event{}
	}
	if core < 0 || core >= len(r.cores) {
		r.err = fmt.Errorf("tracefile: core %d out of range [0,%d)", core, len(r.cores))
		return trace.Event{}
	}
	d := &r.cores[core]
	if d.remaining == 0 {
		if !r.advance(core, d) {
			return trace.Event{}
		}
	}
	v1, n := binary.Uvarint(d.payload[d.pos:])
	if n <= 0 {
		r.err = corruptf("core %d: bad gap varint at payload offset %d", core, d.pos)
		return trace.Event{}
	}
	d.pos += n
	v2, n := binary.Uvarint(d.payload[d.pos:])
	if n <= 0 {
		r.err = corruptf("core %d: bad address varint at payload offset %d", core, d.pos)
		return trace.Event{}
	}
	d.pos += n
	d.remaining--
	if d.remaining == 0 && d.pos != len(d.payload) {
		r.err = corruptf("core %d: %d trailing payload bytes", core, len(d.payload)-d.pos)
		return trace.Event{}
	}
	d.prev += uint64(unzigzag(v2))
	return trace.Event{
		Gap:   int(v1 >> 1),
		Addr:  mem.Addr(d.prev),
		Write: v1&1 == 1,
	}
}

// advance loads core's next chunk, wrapping at the end of its list.
func (r *Reader) advance(core int, d *coreDec) bool {
	if len(d.list) == 0 {
		r.err = fmt.Errorf("tracefile: core %d has no recorded events", core)
		return false
	}
	if d.li == len(d.list) {
		d.li = 0
		r.wrapped = true
	}
	if err := r.loadChunk(d, int(d.list[d.li])); err != nil {
		r.err = err
		return false
	}
	d.li++
	return true
}

// loadChunk reads and validates chunk ci into d's reusable buffer.
func (r *Reader) loadChunk(d *coreDec, ci int) error {
	e := r.chunks[ci]
	b := d.buf[:chunkFrameLen+int(e.payloadLen)]
	if _, err := r.src.ReadAt(b, int64(e.offset)); err != nil {
		return fmt.Errorf("tracefile: read chunk at %d: %w", e.offset, err)
	}
	if !bytes.Equal(b[0:4], magicChunk[:]) {
		return corruptf("chunk at %d: bad magic %q", e.offset, b[0:4])
	}
	if getU32(b[4:]) != e.core || getU32(b[8:]) != e.events || getU32(b[12:]) != e.payloadLen {
		return corruptf("chunk at %d disagrees with index", e.offset)
	}
	payload := b[chunkFrameLen:]
	if getU32(b[16:]) != crc32.Checksum(payload, castagnoli) {
		return corruptf("chunk at %d: payload checksum mismatch", e.offset)
	}
	d.payload = payload
	d.pos = 0
	d.remaining = e.events
	d.prev = 0
	return nil
}

// Rewind resets every core's replay cursor to the start of its stream
// and clears the wrap marker. Latched decode errors stay latched.
func (r *Reader) Rewind() {
	for i := range r.cores {
		d := &r.cores[i]
		d.li = 0
		d.remaining = 0
		d.pos = 0
		d.prev = 0
		d.payload = nil
	}
	r.wrapped = false
}

// Verify loads and fully decodes every chunk, checking checksums and
// event counts, without disturbing replay cursors. It is the whole-file
// integrity walk behind `tracegen inspect` and the fuzz target.
func (r *Reader) Verify() error {
	var scratch coreDec
	var max uint32
	for _, e := range r.chunks {
		if e.payloadLen > max {
			max = e.payloadLen
		}
	}
	scratch.buf = make([]byte, chunkFrameLen+int(max))
	for ci := range r.chunks {
		if err := r.loadChunk(&scratch, ci); err != nil {
			return err
		}
		for scratch.remaining > 0 {
			v, n := binary.Uvarint(scratch.payload[scratch.pos:])
			if n <= 0 {
				return corruptf("chunk %d: bad gap varint", ci)
			}
			scratch.pos += n
			if _, n = binary.Uvarint(scratch.payload[scratch.pos:]); n <= 0 {
				return corruptf("chunk %d: bad address varint", ci)
			}
			scratch.pos += n
			scratch.remaining--
			_ = v
		}
		if scratch.pos != len(scratch.payload) {
			return corruptf("chunk %d: %d trailing payload bytes", ci, len(scratch.payload)-scratch.pos)
		}
	}
	return nil
}

// ChunkInfo describes one indexed chunk (for `tracegen inspect`).
type ChunkInfo struct {
	Core       int
	Events     uint32
	PayloadLen uint32
	Offset     uint64
	FirstEvent uint64
}

// Chunks returns a copy of the chunk index in file order.
func (r *Reader) Chunks() []ChunkInfo {
	out := make([]ChunkInfo, len(r.chunks))
	for i, e := range r.chunks {
		out[i] = ChunkInfo{
			Core:       int(e.core),
			Events:     e.events,
			PayloadLen: e.payloadLen,
			Offset:     e.offset,
			FirstEvent: e.firstEvent,
		}
	}
	return out
}

// Close releases the underlying file when the Reader owns it.
func (r *Reader) Close() error {
	if r.closer == nil {
		return nil
	}
	err := r.closer.Close()
	r.closer = nil
	return err
}
