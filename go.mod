module banshee

go 1.24
