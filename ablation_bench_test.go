// Ablation benchmarks for the design choices DESIGN.md §7 calls out:
// the replacement threshold of Algorithm 1, the tag-buffer capacity,
// and the two paper-named extensions (footprint caching and set
// dueling). Each reports its figure of merit via b.ReportMetric.
package banshee_test

import (
	"fmt"
	"testing"

	"banshee"
)

// BenchmarkThresholdAblation sweeps Algorithm 1's replacement threshold
// around the paper's default (page_lines × coeff / 2 = 3.2): too low
// thrashes, too high under-caches.
func BenchmarkThresholdAblation(b *testing.B) {
	for _, th := range []float64{1, 3.2, 8, 16} {
		b.Run(fmt.Sprintf("threshold=%g", th), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				base := mustRun(b, cfg, "pagerank", "NoCache")
				cfg.Scheme, _ = banshee.ParseScheme("Banshee")
				cfg.Scheme.BansheeThreshold = th
				res := mustRun(b, cfg, "pagerank", "Banshee")
				speedup = banshee.Speedup(res, base)
			}
			b.ReportMetric(speedup, "speedup-x")
		})
	}
}

// BenchmarkTagBufferAblation sweeps the per-MC tag-buffer capacity.
// The paper notes doubling the buffer halves the effective PTE-update
// cost (§5.5.2); the flush count is the visible effect.
func BenchmarkTagBufferAblation(b *testing.B) {
	for _, entries := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			var flushes float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Scheme, _ = banshee.ParseScheme("Banshee")
				cfg.Scheme.BansheeTagBufEntries = entries
				res := mustRun(b, cfg, "pagerank", "Banshee")
				flushes = float64(res.TagBufferFlushes)
			}
			b.ReportMetric(flushes, "flushes")
		})
	}
}

// BenchmarkFootprintExtension compares Banshee with and without the
// orthogonal footprint-caching extension (§6): footprint fills should
// cut replacement traffic on sparse-access workloads.
func BenchmarkFootprintExtension(b *testing.B) {
	for _, scheme := range []string{"Banshee", "Banshee FP"} {
		b.Run(scheme, func(b *testing.B) {
			var bpi float64
			for i := 0; i < b.N; i++ {
				res := mustRun(b, benchConfig(), "omnetpp", scheme)
				bpi = res.InPkgBPI()
			}
			b.ReportMetric(bpi, "inpkg-B/i")
		})
	}
}

// BenchmarkSetDueling compares static FBR against the §5.2 set-dueling
// extension on the workload class each policy favors: FBR on skewed
// reuse (pagerank), always-replace on streams (lbm).
func BenchmarkSetDueling(b *testing.B) {
	for _, tc := range []struct{ workload, scheme string }{
		{"pagerank", "Banshee"},
		{"pagerank", "Banshee Duel"},
		{"lbm", "Banshee"},
		{"lbm", "Banshee Duel"},
	} {
		b.Run(tc.workload+"/"+tc.scheme, func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				base := mustRun(b, cfg, tc.workload, "NoCache")
				res := mustRun(b, cfg, tc.workload, tc.scheme)
				speedup = banshee.Speedup(res, base)
			}
			b.ReportMetric(speedup, "speedup-x")
		})
	}
}

// BenchmarkPrefetchAblation measures the §3.2 stream prefetcher's
// effect under Banshee on a streaming workload.
func BenchmarkPrefetchAblation(b *testing.B) {
	for _, degree := range []int{0, 2, 4, 8} {
		b.Run(fmt.Sprintf("degree=%d", degree), func(b *testing.B) {
			var mpki float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.PrefetchDegree = degree
				res := mustRun(b, cfg, "lbm", "Banshee")
				mpki = float64(res.LLCMisses) / float64(res.Instructions) * 1000
			}
			b.ReportMetric(mpki, "LLC-MPKI")
		})
	}
}

// BenchmarkCAMEO places the related-work CAMEO organization next to
// Banshee and Alloy on the main workload.
func BenchmarkCAMEO(b *testing.B) {
	for _, scheme := range []string{"CAMEO", "Alloy 1", "Banshee"} {
		b.Run(scheme, func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				base := mustRun(b, cfg, "pagerank", "NoCache")
				res := mustRun(b, cfg, "pagerank", scheme)
				speedup = banshee.Speedup(res, base)
			}
			b.ReportMetric(speedup, "speedup-x")
		})
	}
}

// BenchmarkKernelWorkloads runs the graph-kernel trace variants through
// Banshee (fidelity cross-check of the parametric generators).
func BenchmarkKernelWorkloads(b *testing.B) {
	for _, w := range []string{"pagerank_kernel", "graph500_kernel"} {
		b.Run(w, func(b *testing.B) {
			var hit float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.InstrPerCore = 200_000
				res := mustRun(b, cfg, w, "Banshee")
				hit = 100 * (1 - res.MissRate())
			}
			b.ReportMetric(hit, "hit-%")
		})
	}
}
